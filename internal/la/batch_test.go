package la

import (
	"math"
	"math/rand"
	"testing"
)

// testSystem builds a diagonally dominant banded sparse system of the
// shape the voltage solve produces: a structurally symmetric band plus a
// strong diagonal shift. Returns the CSR and a value generator that
// rewrites Val in place from a seed (same pattern, fresh numbers).
func testSystem(t testing.TB, n, band int) (*CSR, func(*CSR, int64)) {
	t.Helper()
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 0)
		for d := 1; d <= band; d++ {
			if j := i + d; j < n && (i+d)%3 != 0 {
				b.Add(i, j, 0)
				b.Add(j, i, 0)
			}
		}
	}
	a := b.Compile()
	fill := func(m *CSR, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < m.Rows; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if m.ColIdx[k] == i {
					m.Val[k] = 20 + 5*rng.Float64()
				} else {
					m.Val[k] = 2*rng.Float64() - 1
				}
			}
		}
	}
	return a, fill
}

// cloneVals returns K per-member value arrays plus the interleaved batch
// copy (entry t of member m at t*k+m).
func memberVals(a *CSR, fill func(*CSR, int64), k int) (vals [][]float64, valB []float64) {
	valB = make([]float64, len(a.Val)*k)
	for m := 0; m < k; m++ {
		fill(a, int64(100+m))
		v := append([]float64(nil), a.Val...)
		vals = append(vals, v)
		for t, x := range v {
			valB[t*k+m] = x
		}
	}
	return vals, valB
}

func interleave(lanes []Vector, k int) []float64 {
	n := len(lanes[0])
	out := make([]float64, n*k)
	for m, lane := range lanes {
		for i, v := range lane {
			out[i*k+m] = v
		}
	}
	return out
}

func laneOf(x []float64, m, k, n int) Vector {
	out := make(Vector, n)
	for i := range out {
		out[i] = x[i*k+m]
	}
	return out
}

// TestRefactorBatchBitIdentical asserts that one blocked RefactorBatch
// pass produces, for every member lane, exactly the bits of a scalar
// Refactor of that member's values.
func TestRefactorBatchBitIdentical(t *testing.T) {
	const k = 5
	a, fill := testSystem(t, 200, 4)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, valB := memberVals(a, fill, k)

	bf := f.NewBatchFactor(k)
	if err := f.RefactorBatch(bf, valB, nil); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < k; m++ {
		copy(a.Val, vals[m])
		if err := f.Refactor(); err != nil {
			t.Fatalf("member %d: %v", m, err)
		}
		for s, want := range f.lx {
			if got := bf.lx[s*k+m]; got != want {
				t.Fatalf("member %d: L[%d] = %g, scalar %g", m, s, got, want)
			}
		}
		for s, want := range f.ux {
			if got := bf.ux[s*k+m]; got != want {
				t.Fatalf("member %d: U[%d] = %g, scalar %g", m, s, got, want)
			}
		}
	}
}

// TestRefactorBatchMask asserts that a masked refactor updates exactly
// the masked lanes and leaves every other lane's stored factor bits
// untouched — the contract the per-rung cache refresh relies on.
func TestRefactorBatchMask(t *testing.T) {
	const k = 4
	a, fill := testSystem(t, 120, 3)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	_, valB := memberVals(a, fill, k)
	bf := f.NewBatchFactor(k)
	if err := f.RefactorBatch(bf, valB, nil); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), bf.lx...)
	beforeU := append([]float64(nil), bf.ux...)

	// New values for members 1 and 3 only.
	valB2 := append([]float64(nil), valB...)
	rng := rand.New(rand.NewSource(9))
	for t := range valB2 {
		if m := t % k; m == 1 || m == 3 {
			valB2[t] += 0.01 * rng.Float64() * valB2[t]
		}
	}
	mask := []bool{false, true, false, true}
	if err := f.RefactorBatch(bf, valB2, mask); err != nil {
		t.Fatal(err)
	}
	for s := range before {
		m := s % k
		if !mask[m] && bf.lx[s] != before[s] {
			t.Fatalf("unmasked lane %d: L[%d] changed", m, s/k)
		}
	}
	for s := range beforeU {
		m := s % k
		if !mask[m] && bf.ux[s] != beforeU[s] {
			t.Fatalf("unmasked lane %d: U[%d] changed", m, s/k)
		}
	}
	// Masked lanes must equal a full refactor of the new values.
	bf2 := f.NewBatchFactor(k)
	if err := f.RefactorBatch(bf2, valB2, nil); err != nil {
		t.Fatal(err)
	}
	for s := range bf.lx {
		if mask[s%k] && bf.lx[s] != bf2.lx[s] {
			t.Fatalf("masked lane %d: L[%d] differs from full refactor", s%k, s/k)
		}
	}
}

// TestSolveBatchBitIdentical is the satellite-1 property test for the
// sparse path: SolveBatchInto must reproduce K sequential SolveInto calls
// bit for bit, masked and unmasked.
func TestSolveBatchBitIdentical(t *testing.T) {
	const k = 7
	a, fill := testSystem(t, 200, 4)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, valB := memberVals(a, fill, k)
	bf := f.NewBatchFactor(k)
	if err := f.RefactorBatch(bf, valB, nil); err != nil {
		t.Fatal(err)
	}

	n := a.Rows
	rng := rand.New(rand.NewSource(2))
	lanes := make([]Vector, k)
	for m := range lanes {
		lanes[m] = NewVector(n)
		for i := range lanes[m] {
			lanes[m][i] = 2*rng.Float64() - 1
		}
		// Exercise the yj == 0 skip paths with exact zeros.
		lanes[m][m] = 0
		lanes[m][(3*m+11)%n] = 0
	}
	b := interleave(lanes, k)
	dst := make([]float64, n*k)
	f.SolveBatchInto(dst, b, bf, nil)

	want := make([]Vector, k)
	for m := 0; m < k; m++ {
		copy(a.Val, vals[m])
		if err := f.Refactor(); err != nil {
			t.Fatal(err)
		}
		want[m] = NewVector(n)
		f.SolveInto(want[m], lanes[m])
		got := laneOf(dst, m, k, n)
		for i := range got {
			if got[i] != want[m][i] {
				t.Fatalf("member %d: x[%d] = %g, scalar %g", m, i, got[i], want[m][i])
			}
		}
	}

	// Masked solve: only lanes 2 and 5 may change.
	sentinel := make([]float64, n*k)
	for i := range sentinel {
		sentinel[i] = math.Pi
	}
	mask := make([]bool, k)
	mask[2], mask[5] = true, true
	f.SolveBatchInto(sentinel, b, bf, mask)
	for i := 0; i < n; i++ {
		for m := 0; m < k; m++ {
			got := sentinel[i*k+m]
			if mask[m] {
				if got != want[m][i] {
					t.Fatalf("masked member %d: x[%d] = %g, scalar %g", m, i, got, want[m][i])
				}
			} else if got != math.Pi {
				t.Fatalf("unmasked member %d: dst[%d] overwritten", m, i)
			}
		}
	}
}

// TestResidualNormBatchBitIdentical checks the fused batched residual
// against K scalar ResidualNormInto passes, bits and norms.
func TestResidualNormBatchBitIdentical(t *testing.T) {
	const k = 4
	a, fill := testSystem(t, 150, 3)
	fill(a, 1)
	vals, valB := memberVals(a, fill, k)
	n := a.Rows
	rng := rand.New(rand.NewSource(3))
	bl := make([]Vector, k)
	vl := make([]Vector, k)
	for m := 0; m < k; m++ {
		bl[m], vl[m] = NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			bl[m][i] = 2*rng.Float64() - 1
			vl[m][i] = 2*rng.Float64() - 1
		}
	}
	b, v := interleave(bl, k), interleave(vl, k)
	dst := make([]float64, n*k)
	norms := make([]float64, k)
	a.ResidualNormBatchInto(dst, b, v, valB, k, norms, nil)
	for m := 0; m < k; m++ {
		copy(a.Val, vals[m])
		want := NewVector(n)
		wantNorm := a.ResidualNormInto(want, bl[m], vl[m])
		if norms[m] != wantNorm {
			t.Fatalf("member %d: norm %g, scalar %g", m, norms[m], wantNorm)
		}
		for i := range want {
			if dst[i*k+m] != want[i] {
				t.Fatalf("member %d: r[%d] = %g, scalar %g", m, i, dst[i*k+m], want[i])
			}
		}
	}
}

// TestRefinementBatchBitIdentical is the satellite-1 "under stale-factor
// refinement" case: with a factor computed at stale values, refinement
// sweeps r = b − A·v; v += M_stale⁻¹·r through the batched kernels must
// track the scalar sweeps bit for bit, per lane, sweep by sweep.
func TestRefinementBatchBitIdentical(t *testing.T) {
	const k, sweeps = 4, 3
	a, fill := testSystem(t, 150, 3)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	staleVals, staleB := memberVals(a, fill, k)
	bf := f.NewBatchFactor(k)
	if err := f.RefactorBatch(bf, staleB, nil); err != nil {
		t.Fatal(err)
	}
	// Drifted current values per member: stale + 2% perturbation.
	curVals := make([][]float64, k)
	curB := make([]float64, len(staleB))
	rng := rand.New(rand.NewSource(5))
	for m := 0; m < k; m++ {
		cv := append([]float64(nil), staleVals[m]...)
		for t := range cv {
			cv[t] *= 1 + 0.02*(2*rng.Float64()-1)
		}
		curVals[m] = cv
		for t, x := range cv {
			curB[t*k+m] = x
		}
	}
	n := a.Rows
	bl := make([]Vector, k)
	vl := make([]Vector, k)
	for m := 0; m < k; m++ {
		bl[m], vl[m] = NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			bl[m][i] = 2*rng.Float64() - 1
		}
	}
	bb, vb := interleave(bl, k), interleave(vl, k)
	resB := make([]float64, n*k)
	delB := make([]float64, n*k)
	norms := make([]float64, k)
	// Mask out lane 1 after the first sweep, as the per-lane refinement
	// control does when a lane converges early.
	mask := []bool{true, true, true, true}
	for it := 0; it < sweeps; it++ {
		if it == 1 {
			mask[1] = false
		}
		a.ResidualNormBatchInto(resB, bb, vb, curB, k, norms, mask)
		f.SolveBatchInto(delB, resB, bf, mask)
		for i := 0; i < n; i++ {
			for m, on := range mask {
				if on {
					vb[i*k+m] += delB[i*k+m]
				}
			}
		}
	}
	// Scalar replay per lane with its own sweep count.
	for m := 0; m < k; m++ {
		copy(a.Val, staleVals[m])
		if err := f.Refactor(); err != nil {
			t.Fatal(err)
		}
		copy(a.Val, curVals[m])
		v := NewVector(n)
		res, del := NewVector(n), NewVector(n)
		laneSweeps := sweeps
		if m == 1 {
			laneSweeps = 1
		}
		for it := 0; it < laneSweeps; it++ {
			a.ResidualNormInto(res, bl[m], v)
			f.SolveInto(del, res)
			v.Add(del)
		}
		for i := range v {
			if vb[i*k+m] != v[i] {
				t.Fatalf("member %d: refined v[%d] = %g, scalar %g", m, i, vb[i*k+m], v[i])
			}
		}
	}
}

// TestDenseSolveBatchBitIdentical is the satellite-1 dense-path case.
func TestDenseSolveBatchBitIdentical(t *testing.T) {
	const n, k = 40, 6
	rng := rand.New(rand.NewSource(11))
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 2*rng.Float64()-1)
		}
		a.Addf(i, i, 10)
	}
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]Vector, k)
	for m := range lanes {
		lanes[m] = NewVector(n)
		for i := range lanes[m] {
			lanes[m][i] = 2*rng.Float64() - 1
		}
	}
	b := interleave(lanes, k)
	dst := make([]float64, n*k)
	f.SolveBatchInto(dst, Vector(b), k)
	for m := 0; m < k; m++ {
		want := NewVector(n)
		f.SolveInto(want, lanes[m])
		for i := range want {
			if dst[i*k+m] != want[i] {
				t.Fatalf("member %d: x[%d] = %g, scalar %g", m, i, dst[i*k+m], want[i])
			}
		}
	}
}

// TestRefactorBatchZeroAlloc pins the batched kernels to the zero-alloc
// step budget the hotpath annotation promises.
func TestBatchKernelsZeroAlloc(t *testing.T) {
	const k = 8
	a, fill := testSystem(t, 200, 4)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	_, valB := memberVals(a, fill, k)
	bf := f.NewBatchFactor(k)
	b := make([]float64, a.Rows*k)
	dst := make([]float64, a.Rows*k)
	norms := make([]float64, k)
	for i := range b {
		b[i] = float64(i%17) - 8
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.RefactorBatch(bf, valB, nil); err != nil {
			t.Fatal(err)
		}
		f.SolveBatchInto(dst, b, bf, nil)
		a.ResidualNormBatchInto(dst, b, dst, valB, k, norms, nil)
	})
	if allocs != 0 {
		t.Fatalf("batched kernels allocate %.1f times per run, want 0", allocs)
	}
}

// BenchmarkBatchLayout is the layout experiment behind the interleaved
// choice (DESIGN.md "Batched lockstep ensembles"): one refactor+solve
// over K=16 systems, either through the member-interleaved batch kernels
// (one symbolic walk, K contiguous lanes per index) or member-major —
// K sequential scalar passes, each re-walking the symbolic arrays.
func BenchmarkBatchLayout(b *testing.B) {
	const k = 16
	a, fill := testSystem(b, 2000, 6)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		b.Fatal(err)
	}
	vals, valB := memberVals(a, fill, k)
	n := a.Rows

	b.Run("interleaved", func(b *testing.B) {
		bf := f.NewBatchFactor(k)
		rhs := make([]float64, n*k)
		dst := make([]float64, n*k)
		for i := range rhs {
			rhs[i] = float64(i%13) - 6
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.RefactorBatch(bf, valB, nil); err != nil {
				b.Fatal(err)
			}
			f.SolveBatchInto(dst, rhs, bf, nil)
		}
	})
	b.Run("member-major", func(b *testing.B) {
		facs := make([]*Factor, k)
		for m := range facs {
			facs[m] = f.NewFactor()
		}
		rhs := NewVector(n)
		dst := NewVector(n)
		for i := range rhs {
			rhs[i] = float64(i%13) - 6
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for m := 0; m < k; m++ {
				copy(a.Val, vals[m])
				f.SetFactor(facs[m])
				if err := f.Refactor(); err != nil {
					b.Fatal(err)
				}
				f.SolveInto(dst, rhs)
			}
		}
	})
}

// TestSparseMaskDispatchBitIdentical sweeps the mask popcount across the
// strided/blocked dispatch boundary of all three masked kernels
// (RefactorBatch, SolveBatchInto, ResidualNormBatchInto), asserting that
// every masked lane's result is bit-identical to the scalar kernel
// whichever side handled it, and that unmasked lanes are untouched.
func TestSparseMaskDispatchBitIdentical(t *testing.T) {
	const k = 8
	const n = 120
	a, fill := testSystem(t, n, 3)
	fill(a, 1)
	f, err := NewSparseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, valB := memberVals(a, fill, k)

	rng := rand.New(rand.NewSource(9))
	lanes := make([]Vector, k)
	for m := range lanes {
		lanes[m] = NewVector(n)
		for i := range lanes[m] {
			lanes[m][i] = 2*rng.Float64() - 1
		}
	}
	b := interleave(lanes, k)

	// Scalar references per member: factor bits, solve, residual.
	type ref struct {
		lx, ux []float64
		sol    Vector
		res    Vector
		norm   float64
	}
	refs := make([]ref, k)
	for m := 0; m < k; m++ {
		copy(a.Val, vals[m])
		if err := f.Refactor(); err != nil {
			t.Fatal(err)
		}
		r := ref{
			lx:  append([]float64(nil), f.lx...),
			ux:  append([]float64(nil), f.ux...),
			sol: NewVector(n),
			res: NewVector(n),
		}
		f.SolveInto(r.sol, laneOf(b, m, k, n))
		r.norm = a.ResidualNormInto(r.res, laneOf(b, m, k, n), r.sol)
		refs[m] = r
	}

	for pop := 1; pop <= k; pop++ {
		mask := make([]bool, k)
		for _, m := range rng.Perm(k)[:pop] {
			mask[m] = true
		}
		bf := f.NewBatchFactor(k)
		if err := f.RefactorBatch(bf, valB, mask); err != nil {
			t.Fatal(err)
		}
		sol := make([]float64, n*k)
		for i := range sol {
			sol[i] = math.NaN() // sentinel: unmasked lanes must keep it
		}
		f.SolveBatchInto(sol, b, bf, mask)
		resB := make([]float64, n*k)
		norms := make([]float64, k)
		a.ResidualNormBatchInto(resB, b, sol, valB, k, norms, mask)
		for m := 0; m < k; m++ {
			if !mask[m] {
				if !math.IsNaN(sol[m]) {
					t.Fatalf("pop %d: unmasked lane %d solved", pop, m)
				}
				continue
			}
			for s, want := range refs[m].lx {
				if got := bf.lx[s*k+m]; math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("pop %d lane %d: L[%d] = %g, scalar %g", pop, m, s, got, want)
				}
			}
			for s, want := range refs[m].ux {
				if got := bf.ux[s*k+m]; math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("pop %d lane %d: U[%d] = %g, scalar %g", pop, m, s, got, want)
				}
			}
			for i, want := range refs[m].sol {
				if got := sol[i*k+m]; math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("pop %d lane %d: x[%d] = %g, scalar %g", pop, m, i, got, want)
				}
			}
			for i, want := range refs[m].res {
				if got := resB[i*k+m]; math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("pop %d lane %d: res[%d] = %g, scalar %g", pop, m, i, got, want)
				}
			}
			if math.Float64bits(norms[m]) != math.Float64bits(refs[m].norm) {
				t.Fatalf("pop %d lane %d: norm = %g, scalar %g", pop, m, norms[m], refs[m].norm)
			}
		}
	}
}
