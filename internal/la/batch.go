package la

import (
	"fmt"
	"math"
)

// Batched multi-RHS kernels over a SparseLU's frozen symbolic structure.
//
// A batch holds K same-pattern systems in member-interleaved SoA layout:
// scalar element j of member m lives at index j*K + m, so every symbolic
// index (a column pointer, a fill position, a permutation entry) is loaded
// once and applied to K contiguous values. The alternative — member-major
// blocks — re-walks the symbolic arrays per member and was measured slower
// (see BenchmarkBatchLayout and DESIGN.md "Batched lockstep ensembles").
//
// Bit-identity contract: every kernel performs, per member lane, the exact
// floating-point operation sequence of its scalar counterpart (Refactor,
// SolveInto, ResidualNormInto), including the data-dependent zero skips —
// so a batched member's results are bit-identical to a scalar run of that
// member, which the lockstep equivalence suites assert.

// BatchFactor holds K sets of numeric L/U values for one SparseLU's
// symbolic structure, member-interleaved, plus the private workspaces the
// batched kernels need. Create with NewBatchFactor; a BatchFactor belongs
// to the SparseLU whose structure sized it and must not be shared across
// concurrent batches.
type BatchFactor struct {
	k  int
	lx []float64 // interleaved strictly-lower values: L entry t, member m at t*k+m
	ux []float64 // interleaved upper values (diag last per column)

	x  []float64 // refactor scatter workspace [n*k], zero between calls
	y  []float64 // solve workspace [n*k]
	xk []float64 // per-column pivot-row buffer [k]
}

// K returns the batch width.
func (bf *BatchFactor) K() int { return bf.k }

// NewBatchFactor allocates an empty K-wide factor sized for f's symbolic
// structure. Fill it with RefactorBatch. Allocation is a cold-path cost
// paid once per batch.
func (f *SparseLU) NewBatchFactor(k int) *BatchFactor {
	if k < 1 {
		panic("la: SparseLU.NewBatchFactor requires k >= 1")
	}
	return &BatchFactor{
		k:  k,
		lx: make([]float64, len(f.li)*k),
		ux: make([]float64, len(f.ui)*k),
		x:  make([]float64, f.n*k),
		y:  make([]float64, f.n*k),
		xk: make([]float64, k),
	}
}

// sparseMask reports whether mask selects few enough lanes that the
// strided per-lane kernels beat the blocked K-wide walk. The blocked
// kernels cost O(K·nnz) whatever the popcount, so rare per-lane events —
// a single drifted member refactoring, one lane refining — would be
// amplified K-fold in lockstep; below a quarter occupancy the per-lane
// twins win. Both sides are bit-identical to the scalar kernels, so the
// dispatch is purely a performance choice.
func sparseMask(mask []bool, k int) bool {
	if mask == nil {
		return false
	}
	active := 0
	for _, on := range mask {
		if on {
			active++
		}
	}
	return 4*active <= k
}

// refactorLane is the strided scalar twin of Refactor for one member
// lane: the identical op sequence, indexing the interleaved arrays with
// stride k. The shared scatter workspace is left all-zero behind it, so
// blocked and strided calls interleave freely. Batch twin of Refactor
// (kernel pair sparse-refactor).
//
//dmmvet:pair name=sparse-refactor role=batch
//dmmvet:hotpath
func (f *SparseLU) refactorLane(bf *BatchFactor, valB []float64, m int) error {
	k := bf.k
	x := bf.x
	lxB, uxB := bf.lx, bf.ux
	aRow, aSrc := f.aRow, f.aSrc
	liAll := f.li
	for j := 0; j < f.n; j++ {
		for t := f.aColPtr[j]; t < f.aColPtr[j+1]; t++ {
			x[int(aRow[t])*k+m] = valB[int(aSrc[t])*k+m]
		}
		uEnd := int(f.up[j+1]) - 1
		for t := int(f.up[j]); t < uEnd; t++ {
			c := int(f.ui[t])
			xk := x[c*k+m]
			x[c*k+m] = 0
			uxB[t*k+m] = xk
			if xk == 0 {
				continue
			}
			li := liAll[f.lp[c]:f.lp[c+1]]
			base := int(f.lp[c])
			for s, r := range li {
				x[int(r)*k+m] -= float64(lxB[(base+s)*k+m] * xk)
			}
		}
		d := x[j*k+m]
		x[j*k+m] = 0
		uxB[uEnd*k+m] = d
		if d == 0 || math.IsNaN(d) {
			return fmt.Errorf("la: batched sparse LU singular at column %d (member %d)", f.perm[j], m)
		}
		invD := 1 / d
		li := liAll[f.lp[j]:f.lp[j+1]]
		base := int(f.lp[j])
		for s, r := range li {
			lxB[(base+s)*k+m] = x[int(r)*k+m] * invD
			x[int(r)*k+m] = 0
		}
	}
	return nil
}

// RefactorBatch recomputes the numeric factorization of every masked
// member from valB — the K interleaved value arrays of the bound pattern
// (entry t of member m at t*k+m) — in one pass over the shared symbolic
// structure. mask selects the member lanes to refactor (nil refactors
// all); unmasked lanes keep their stored factor values untouched, which
// is what lets a rung cache refresh only the members that drifted.
//
// Per masked lane the arithmetic is bit-identical to Refactor, including
// the xk == 0 elimination skip. It allocates nothing.
//
//dmmvet:hotpath
func (f *SparseLU) RefactorBatch(bf *BatchFactor, valB []float64, mask []bool) error {
	k := bf.k
	if len(valB) != len(f.a.Val)*k {
		panic("la: SparseLU.RefactorBatch value length mismatch")
	}
	if sparseMask(mask, k) {
		// Few drifted lanes: the blocked walk would cost K-wide inner
		// loops regardless, so refactor each masked lane by the strided
		// scalar twin — work proportional to the popcount.
		for m, on := range mask {
			if on {
				if err := f.refactorLane(bf, valB, m); err != nil {
					return err
				}
			}
		}
		return nil
	}
	x, xkb := bf.x, bf.xk
	lxB, uxB := bf.lx, bf.ux
	aRow, aSrc := f.aRow, f.aSrc
	liAll := f.li
	for j := 0; j < f.n; j++ {
		// Scatter column j of every masked member's A into the workspace.
		for t := f.aColPtr[j]; t < f.aColPtr[j+1]; t++ {
			dst := x[int(aRow[t])*k : int(aRow[t])*k+k]
			src := valB[int(aSrc[t])*k : int(aSrc[t])*k+k]
			if mask == nil {
				copy(dst, src)
			} else {
				for m, on := range mask {
					if on {
						dst[m] = src[m]
					}
				}
			}
		}
		// Eliminate with every upper-pattern column c < j. The pivot row is
		// copied out through xkb so unmasked lanes contribute exactly zero:
		// their workspace lanes are never written and stay 0. The per-lane
		// xk == 0 elimination skip of the scalar kernel is constant across
		// the whole L column, so it is hoisted: when every lane is nonzero
		// (the overwhelmingly common case) the inner loop runs branch-free.
		uEnd := int(f.up[j+1]) - 1 // last entry is the diagonal
		for t := int(f.up[j]); t < uEnd; t++ {
			c := int(f.ui[t])
			xc := x[c*k : c*k+k]
			ux := uxB[t*k : t*k+k]
			allNZ := true
			if mask == nil {
				for m, v := range xc {
					xc[m] = 0
					ux[m] = v
					xkb[m] = v
					if v == 0 {
						allNZ = false
					}
				}
			} else {
				for m, on := range mask {
					if on {
						v := xc[m]
						xc[m] = 0
						ux[m] = v
						xkb[m] = v
						if v == 0 {
							allNZ = false
						}
					} else {
						xkb[m] = 0
						allNZ = false
					}
				}
			}
			li := liAll[f.lp[c]:f.lp[c+1]]
			lxRowBase := int(f.lp[c])
			if allNZ {
				for s, r := range li {
					xr := x[int(r)*k:][:len(xkb)]
					lx := lxB[(lxRowBase+s)*k:][:len(xkb)]
					for m, xk := range xkb {
						xr[m] -= float64(lx[m] * xk)
					}
				}
			} else {
				for s, r := range li {
					xr := x[int(r)*k:][:len(xkb)]
					lx := lxB[(lxRowBase+s)*k:][:len(xkb)]
					for m, xk := range xkb {
						if xk != 0 {
							xr[m] -= float64(lx[m] * xk)
						}
					}
				}
			}
		}
		// Divide the lower part by the diagonal, lane by lane.
		xj := x[j*k : j*k+k]
		ud := uxB[uEnd*k : uEnd*k+k]
		for m := range xkb {
			if mask != nil && !mask[m] {
				xkb[m] = 0
				continue
			}
			d := xj[m]
			xj[m] = 0
			ud[m] = d
			if d == 0 || math.IsNaN(d) {
				return fmt.Errorf("la: batched sparse LU singular at column %d (member %d)", f.perm[j], m)
			}
			xkb[m] = 1 / d
		}
		li := liAll[f.lp[j]:f.lp[j+1]]
		lxRowBase := int(f.lp[j])
		for s, r := range li {
			xr := x[int(r)*k : int(r)*k+k]
			lx := lxB[(lxRowBase+s)*k : (lxRowBase+s)*k+k]
			if mask == nil {
				for m, invD := range xkb {
					lx[m] = xr[m] * invD
					xr[m] = 0
				}
			} else {
				for m, on := range mask {
					if on {
						lx[m] = xr[m] * xkb[m]
						xr[m] = 0
					}
				}
			}
		}
	}
	return nil
}

// SolveBatchInto solves the K systems A_m·x_m = b_m into dst using bf's
// factors, all vectors member-interleaved ([n*k]: element j of member m
// at j*k+m). mask selects the member lanes to solve (nil solves all);
// unmasked lanes of dst are left untouched, so a caller can direct-solve
// some members of a batch while others hold refined solutions. dst may
// alias b.
//
// Per masked lane the arithmetic is bit-identical to SolveInto, including
// the yj == 0 column skips. It allocates nothing.
//
//dmmvet:hotpath
func (f *SparseLU) SolveBatchInto(dst, b []float64, bf *BatchFactor, mask []bool) {
	k := bf.k
	if len(b) != f.n*k || len(dst) != f.n*k {
		panic("la: SparseLU.SolveBatchInto length mismatch")
	}
	if sparseMask(mask, k) {
		for m, on := range mask {
			if on {
				f.solveLaneInto(dst, b, bf, m)
			}
		}
		return
	}
	y := bf.y
	lxB, uxB := bf.lx, bf.ux
	// Permute b into the workspace; unmasked lanes are zeroed so every
	// later operation on them short-circuits through the zero skips.
	for i := 0; i < f.n; i++ {
		yi := y[i*k : i*k+k]
		bi := b[f.perm[i]*k : f.perm[i]*k+k]
		if mask == nil {
			copy(yi, bi)
		} else {
			for m, on := range mask {
				if on {
					yi[m] = bi[m]
				} else {
					yi[m] = 0
				}
			}
		}
	}
	// Forward solve L·z = P·b (unit diagonal, column-oriented). The scalar
	// kernel's per-lane v == 0 skip is constant across column j's updates,
	// so it is hoisted: when every lane is nonzero the inner loop is
	// branch-free, with the checked loop kept as the exact fallback.
	for j := 0; j < f.n; j++ {
		yj := y[j*k : j*k+k]
		allNZ := true
		for _, v := range yj {
			if v == 0 {
				allNZ = false
				break
			}
		}
		li := f.li[f.lp[j]:f.lp[j+1]]
		base := int(f.lp[j])
		if allNZ {
			for s, r := range li {
				yr := y[int(r)*k:][:len(yj)]
				lx := lxB[(base+s)*k:][:len(yj)]
				for m, v := range yj {
					yr[m] -= float64(lx[m] * v)
				}
			}
		} else {
			for s, r := range li {
				yr := y[int(r)*k:][:len(yj)]
				lx := lxB[(base+s)*k:][:len(yj)]
				for m, v := range yj {
					if v != 0 {
						yr[m] -= float64(lx[m] * v)
					}
				}
			}
		}
	}
	// Back solve U·w = z (diagonal last in each column).
	for j := f.n - 1; j >= 0; j-- {
		uEnd := int(f.up[j+1]) - 1
		yj := y[j*k : j*k+k]
		ud := uxB[uEnd*k:][:len(yj)]
		allNZ := true
		for m, v := range yj {
			q := v / ud[m]
			yj[m] = q
			if q == 0 {
				allNZ = false
			}
		}
		ui := f.ui[f.up[j]:uEnd]
		base := int(f.up[j])
		if allNZ {
			for t, r := range ui {
				yr := y[int(r)*k:][:len(yj)]
				ux := uxB[(base+t)*k:][:len(yj)]
				for m, v := range yj {
					yr[m] -= float64(ux[m] * v)
				}
			}
		} else {
			for t, r := range ui {
				yr := y[int(r)*k:][:len(yj)]
				ux := uxB[(base+t)*k:][:len(yj)]
				for m, v := range yj {
					if v != 0 {
						yr[m] -= float64(ux[m] * v)
					}
				}
			}
		}
	}
	for i := 0; i < f.n; i++ {
		yi := y[i*k : i*k+k]
		di := dst[f.perm[i]*k : f.perm[i]*k+k]
		if mask == nil {
			copy(di, yi)
		} else {
			for m, on := range mask {
				if on {
					di[m] = yi[m]
				}
			}
		}
	}
}

// solveLaneInto is the strided scalar twin of SolveInto for one member
// lane, including the yj == 0 column skips. Lanes of the shared workspace
// y outside m are never read or written (kernel pair sparse-solve).
//
//dmmvet:pair name=sparse-solve role=batch
//dmmvet:hotpath
func (f *SparseLU) solveLaneInto(dst, b []float64, bf *BatchFactor, m int) {
	k := bf.k
	y := bf.y
	lxB, uxB := bf.lx, bf.ux
	for i := 0; i < f.n; i++ {
		y[i*k+m] = b[f.perm[i]*k+m]
	}
	// Forward solve L·z = P·b (unit diagonal, column-oriented).
	for j := 0; j < f.n; j++ {
		yj := y[j*k+m]
		if yj == 0 {
			continue
		}
		li := f.li[f.lp[j]:f.lp[j+1]]
		base := int(f.lp[j])
		for s, r := range li {
			y[int(r)*k+m] -= float64(lxB[(base+s)*k+m] * yj)
		}
	}
	// Back solve U·w = z (diagonal last in each column).
	for j := f.n - 1; j >= 0; j-- {
		uEnd := int(f.up[j+1]) - 1
		yj := y[j*k+m] / uxB[uEnd*k+m]
		y[j*k+m] = yj
		if yj == 0 {
			continue
		}
		ui := f.ui[f.up[j]:uEnd]
		base := int(f.up[j])
		for t, r := range ui {
			y[int(r)*k+m] -= float64(uxB[(base+t)*k+m] * yj)
		}
	}
	for i := 0; i < f.n; i++ {
		dst[f.perm[i]*k+m] = y[i*k+m]
	}
}

// ResidualNormBatchInto computes dst_m = b_m − A_m·v_m and ‖dst_m‖∞ for
// every masked member in a single pass over the shared pattern: valB
// holds the K interleaved value arrays of the pattern m (entry t of
// member m at t*k+m), and b, v, dst are member-interleaved [Rows*k].
// norms[m] receives the lane's infinity norm; unmasked lanes of dst and
// norms are untouched (nil mask computes all lanes).
//
// Per masked lane the arithmetic is bit-identical to ResidualNormInto.
// It allocates nothing.
//
//dmmvet:hotpath
func (m *CSR) ResidualNormBatchInto(dst, b, v, valB []float64, k int, norms []float64, mask []bool) {
	if len(v) != m.Cols*k || len(b) != m.Rows*k || len(dst) != m.Rows*k {
		panic("la: CSR.ResidualNormBatchInto shape mismatch")
	}
	if sparseMask(mask, k) {
		for l, on := range mask {
			if on {
				m.residualNormLane(dst, b, v, valB, k, norms, l)
			}
		}
		return
	}
	if mask == nil {
		for l := range norms {
			norms[l] = 0
		}
	} else {
		for l, on := range mask {
			if on {
				norms[l] = 0
			}
		}
	}
	for i := 0; i < m.Rows; i++ {
		di := dst[i*k : i*k+k]
		bi := b[i*k : i*k+k]
		if mask == nil {
			copy(di, bi)
		} else {
			for l, on := range mask {
				if on {
					di[l] = bi[l]
				}
			}
		}
		for t := m.RowPtr[i]; t < m.RowPtr[i+1]; t++ {
			vr := v[m.ColIdx[t]*k : m.ColIdx[t]*k+k]
			vl := valB[t*k : t*k+k]
			if mask == nil {
				for l := range di {
					di[l] -= float64(vl[l] * vr[l])
				}
			} else {
				for l, on := range mask {
					if on {
						di[l] -= float64(vl[l] * vr[l])
					}
				}
			}
		}
		for l, s := range di {
			if mask != nil && !mask[l] {
				continue
			}
			if s < 0 {
				s = -s
			}
			if s > norms[l] {
				norms[l] = s
			}
		}
	}
}

// residualNormLane is the strided scalar twin of ResidualNormInto for
// one member lane (kernel pair residual).
//
//dmmvet:pair name=residual role=batch
//dmmvet:hotpath
func (m *CSR) residualNormLane(dst, b, v, valB []float64, k int, norms []float64, l int) {
	norm := 0.0
	for i := 0; i < m.Rows; i++ {
		s := b[i*k+l]
		for t := m.RowPtr[i]; t < m.RowPtr[i+1]; t++ {
			s -= float64(valB[t*k+l] * v[m.ColIdx[t]*k+l])
		}
		dst[i*k+l] = s
		if s < 0 {
			s = -s
		}
		if s > norm {
			norm = s
		}
	}
	norms[l] = norm
}

// SolveBatchInto solves the K right-hand sides packed member-interleaved
// in b ([n*k]: element j of member m at j*k+m) against the one dense
// factorization, writing each solution into the matching lane of dst.
// Each lane is solved by the scalar substitution, so results are
// bit-identical to K sequential SolveInto calls. Unlike the sparse batch
// kernels this is a test/comparator convenience, not a hot path: it
// allocates its lane-gather scratch per call.
func (f *LU) SolveBatchInto(dst, b Vector, k int) {
	if len(b) != f.n*k || len(dst) != f.n*k {
		panic("la: LU.SolveBatchInto length mismatch")
	}
	lane := make(Vector, f.n)
	for m := 0; m < k; m++ {
		for i := 0; i < f.n; i++ {
			lane[i] = b[i*k+m]
		}
		f.solveInPlace(f.scratch, lane)
		for i := 0; i < f.n; i++ {
			dst[i*k+m] = f.scratch[i]
		}
	}
}
