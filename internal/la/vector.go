// Package la provides the small dense/sparse linear-algebra kernel used by
// the circuit simulator. It is written against the standard library only:
// the repository targets environments without access to external numeric
// packages, so the few primitives the ODE and netlist layers need (vectors,
// dense LU, sparse matvec) are implemented here.
package la

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("la: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets every component to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every component to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add sets v = v + w.
func (v Vector) Add(w Vector) {
	for i := range v {
		v[i] += w[i]
	}
}

// Sub sets v = v - w.
func (v Vector) Sub(w Vector) {
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale sets v = c*v.
func (v Vector) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY sets v = v + c*w.
func (v Vector) AXPY(c float64, w Vector) {
	for i := range v {
		v[i] += float64(c * w[i])
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	var s float64
	for i := range v {
		s += float64(v[i] * w[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	return math.Sqrt(v.Dot(v))
}

// NormInf returns the maximum absolute component of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsDiff returns max_i |v[i]-w[i]|.
func (v Vector) MaxAbsDiff(w Vector) float64 {
	var m float64
	for i := range v {
		if a := math.Abs(v[i] - w[i]); a > m {
			m = a
		}
	}
	return m
}

// HasNaN reports whether any component is NaN or infinite.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
