package la

import (
	"math"
	"math/rand"
	"testing"
)

// randShiftedSparse builds a random sparse n×n system with a diagonal
// shift large enough to keep the pivot-free factorization well posed —
// the same structure the circuit assembly produces (C/h·I + A with
// bounded conductances).
func randShiftedSparse(rng *rand.Rand, n int, density float64, shift float64) *Builder {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, shift+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				b.Add(i, j, 2*rng.Float64()-1)
			}
		}
	}
	return b
}

// TestSparseLUMatchesDense is the property test of the sparse path: on
// random diagonally-shifted sparse systems the sparse solve must agree
// with the dense partial-pivoting LU to 1e-12.
func TestSparseLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		m := randShiftedSparse(rng, n, 0.15, 10).Compile()
		f, err := NewSparseLU(m)
		if err != nil {
			t.Fatalf("trial %d: symbolic: %v", trial, err)
		}
		if err := f.Refactor(); err != nil {
			t.Fatalf("trial %d: refactor: %v", trial, err)
		}
		dense, err := Factorize(m.ToDense())
		if err != nil {
			t.Fatalf("trial %d: dense factorize: %v", trial, err)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
		xs := NewVector(n)
		f.SolveInto(xs, b)
		xd := dense.Solve(b)
		for i := range xs {
			if math.Abs(xs[i]-xd[i]) > 1e-12 {
				t.Fatalf("trial %d (n=%d): x[%d] sparse %v dense %v (diff %g)",
					trial, n, i, xs[i], xd[i], math.Abs(xs[i]-xd[i]))
			}
		}
	}
}

// TestSparseLURefactorReuse changes only the numeric values of a fixed
// pattern and verifies the symbolic-once contract: refactor + solve match
// a from-scratch dense solve at every value set, with no re-analysis.
func TestSparseLURefactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	b := randShiftedSparse(rng, n, 0.2, 8)
	m := b.Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := NewVector(n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	xs := NewVector(n)
	for pass := 0; pass < 10; pass++ {
		// Rewrite values in place (pattern untouched), as the IMEX
		// assembly does between steps.
		for k := range m.Val {
			m.Val[k] = 2*rng.Float64() - 1
		}
		for i := 0; i < n; i++ {
			// Re-shift the diagonal to keep dominance.
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if m.ColIdx[k] == i {
					m.Val[k] = 8 + rng.Float64()
				}
			}
		}
		if err := f.Refactor(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		f.SolveInto(xs, rhs)
		xd, err := SolveDense(m.ToDense(), rhs)
		if err != nil {
			t.Fatalf("pass %d: dense: %v", pass, err)
		}
		for i := range xs {
			if math.Abs(xs[i]-xd[i]) > 1e-12 {
				t.Fatalf("pass %d: x[%d] sparse %v dense %v", pass, i, xs[i], xd[i])
			}
		}
	}
}

// TestSparseLUSolveAliasing verifies dst may alias b.
func TestSparseLUSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randShiftedSparse(rng, 12, 0.3, 6).Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(); err != nil {
		t.Fatal(err)
	}
	b := NewVector(12)
	for i := range b {
		b[i] = rng.Float64()
	}
	want := NewVector(12)
	f.SolveInto(want, b)
	f.SolveInto(b, b)
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %v vs %v", i, b[i], want[i])
		}
	}
}

// TestSparseLUSingular verifies a numerically singular column is reported,
// not silently divided through.
func TestSparseLUSingular(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1) // rank 1
	m := b.Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

// TestSparseLUStructurallySingular verifies a missing diagonal reach is
// caught at symbolic time.
func TestSparseLUStructurallySingular(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1) // row/col 1 empty
	if _, err := NewSparseLU(b.Compile()); err == nil {
		t.Fatal("expected structural-singularity error")
	}
}

// TestSparseLUTridiagonalNoAllocRefactor spot-checks the zero-allocation
// contract of the numeric phase.
func TestSparseLUTridiagonalNoAllocRefactor(t *testing.T) {
	n := 64
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -1)
			b.Add(i-1, i, -1)
		}
	}
	m := b.Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := NewVector(n)
	for i := range rhs {
		rhs[i] = float64(i % 5)
	}
	dst := NewVector(n)
	allocs := testing.AllocsPerRun(20, func() {
		if err := f.Refactor(); err != nil {
			t.Fatal(err)
		}
		f.SolveInto(dst, rhs)
	})
	if allocs != 0 {
		t.Fatalf("Refactor+SolveInto allocated %v objects per run, want 0", allocs)
	}
	// RCM on a tridiagonal pattern must produce zero fill.
	if f.NNZFactors() != m.NNZ() {
		t.Fatalf("tridiagonal fill-in: factors %d nnz vs matrix %d", f.NNZFactors(), m.NNZ())
	}
}
