package la

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zero Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("la: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Addf adds v to m[i,j].
func (m *Dense) Addf(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every entry to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = m * v. dst must have length m.Rows and v length
// m.Cols; dst must not alias v.
func (m *Dense) MulVec(dst, v Vector) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("la: MulVec shape mismatch (%dx%d)*%d -> %d", m.Rows, m.Cols, len(v), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += float64(a * v[j])
		}
		dst[i] = s
	}
}

// Mul returns m * b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("la: Mul shape mismatch")
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += float64(a * b.At(k, j))
			}
		}
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n       int
	lu      []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	piv     []int     // row permutation
	sign    int       // permutation parity, for Det
	scratch Vector    // SolveInto work area, so the per-step solve never allocates
}

// Factorize computes the LU decomposition of the square matrix a with
// partial pivoting. It returns an error when the matrix is singular to
// working precision.
func Factorize(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		panic("la: Factorize requires a square matrix")
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1, scratch: make(Vector, n)}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		maxAbs := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, fmt.Errorf("la: singular matrix at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= float64(m * lu[k*n+j])
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b for x, overwriting nothing; the solution is returned
// as a fresh vector.
func (f *LU) Solve(b Vector) Vector {
	x := make(Vector, f.n)
	f.solveInPlace(x, b)
	return x
}

// SolveInto is like Solve but writes the result into dst (which may alias
// b) without allocating: the substitution runs in the factorization's
// scratch vector, sized once in Factorize. This keeps the dense IMEX
// voltage solve on the zero-alloc step budget.
//
//dmmvet:hotpath
func (f *LU) SolveInto(dst, b Vector) {
	f.solveInPlace(f.scratch, b)
	copy(dst, f.scratch)
}

// solveInPlace permutes b into x and substitutes in place; x must not
// alias b.
func (f *LU) solveInPlace(x, b Vector) {
	if len(b) != f.n {
		panic("la: Solve length mismatch")
	}
	n := f.n
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s += float64(l * x[j])
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += float64(f.lu[i*n+j] * x[j])
		}
		x[i] = (x[i] - s) / f.lu[i*n+i]
	}
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense solves A*x = b directly (factorize + solve); convenient for
// one-off solves.
func SolveDense(a *Dense, b Vector) (Vector, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
