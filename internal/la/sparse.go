package la

import (
	"fmt"
	"sort"
)

// Triplet is one (row, col, value) entry used while building a sparse matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Builder accumulates triplets for a sparse matrix; duplicate (row, col)
// entries are summed when compiled, matching circuit-stamping semantics.
type Builder struct {
	Rows, Cols int
	entries    []Triplet
}

// NewBuilder returns an empty builder for a Rows×Cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{Rows: rows, Cols: cols}
}

// Add accumulates v at (i, j). A zero v still records the entry: the
// position becomes an explicit structural nonzero, so the compiled
// sparsity pattern depends only on the stamped topology, never on the
// numeric values (symbolic factorizations stay reusable).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.Rows || j < 0 || j >= b.Cols {
		panic(fmt.Sprintf("la: Builder.Add out of range (%d,%d) in %dx%d", i, j, b.Rows, b.Cols))
	}
	b.entries = append(b.entries, Triplet{i, j, v})
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (b *Builder) NNZ() int { return len(b.entries) }

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Compile sums duplicates and produces the CSR form. Entries that sum to
// exactly zero are kept as explicit zeros: dropping them would make the
// sparsity pattern value-dependent, silently invalidating any symbolic
// factorization computed for the same topology at different values.
func (b *Builder) Compile() *CSR {
	ents := make([]Triplet, len(b.entries))
	copy(ents, b.entries)
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Row != ents[j].Row {
			return ents[i].Row < ents[j].Row
		}
		return ents[i].Col < ents[j].Col
	})
	m := &CSR{Rows: b.Rows, Cols: b.Cols, RowPtr: make([]int, b.Rows+1)}
	for k := 0; k < len(ents); {
		r, c := ents[k].Row, ents[k].Col
		var sum float64
		for k < len(ents) && ents[k].Row == r && ents[k].Col == c {
			sum += ents[k].Val
			k++
		}
		m.ColIdx = append(m.ColIdx, c)
		m.Val = append(m.Val, sum)
		m.RowPtr[r+1]++
	}
	for i := 0; i < b.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = m*v. dst must not alias v.
func (m *CSR) MulVec(dst, v Vector) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic("la: CSR.MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += float64(m.Val[k] * v[m.ColIdx[k]])
		}
		dst[i] = s
	}
}

// MulVecAdd computes dst += c * m*v. dst must not alias v.
func (m *CSR) MulVecAdd(dst Vector, c float64, v Vector) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic("la: CSR.MulVecAdd shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += float64(m.Val[k] * v[m.ColIdx[k]])
		}
		dst[i] += float64(c * s)
	}
}

// ResidualNormInto computes dst = b − m·v and returns ‖dst‖∞ in a
// single pass over the matrix — the inner kernel of iterative
// refinement, fused so the residual costs one sweep of the nonzeros
// instead of a copy, a multiply-add and a norm pass. dst may alias b but
// not v. Scalar twin of residualNormLane (kernel pair residual).
//
//dmmvet:pair name=residual role=scalar
//dmmvet:hotpath
func (m *CSR) ResidualNormInto(dst, b, v Vector) float64 {
	if len(v) != m.Cols || len(b) != m.Rows || len(dst) != m.Rows {
		panic("la: CSR.ResidualNormInto shape mismatch")
	}
	norm := 0.0
	for i := 0; i < m.Rows; i++ {
		s := b[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s -= float64(m.Val[k] * v[m.ColIdx[k]])
		}
		dst[i] = s
		if s < 0 {
			s = -s
		}
		if s > norm {
			norm = s
		}
	}
	return norm
}

// At returns m[i,j] (zero when not stored). Intended for tests; O(row nnz).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// ToDense expands m into a dense matrix; intended for tests and small
// implicit solves.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}
