package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderDuplicatesSummed(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, -3)
	m := b.Compile()
	if got := m.At(0, 0); got != 3 {
		t.Fatalf("At(0,0) = %v, want 3 (duplicates summed)", got)
	}
	if got := m.At(1, 1); got != -3 {
		t.Fatalf("At(1,1) = %v, want -3", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Fatalf("At(0,1) = %v, want 0", got)
	}
}

// TestBuilderCancellationKept pins the explicit-zero contract: entries
// summing to exactly zero stay in the pattern, so two compiles of the same
// topology always agree structurally regardless of the numeric values.
func TestBuilderCancellationKept(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 5)
	b.Add(0, 0, -5)
	m := b.Compile()
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (explicit zero kept after exact cancellation)", m.NNZ())
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want explicit 0", got)
	}
}

// TestBuilderPatternValueIndependent compiles one topology under two value
// assignments — one with an exact cancellation — and requires identical
// RowPtr/ColIdx, the invariant symbolic LU reuse rests on.
func TestBuilderPatternValueIndependent(t *testing.T) {
	build := func(v1, v2 float64) *CSR {
		b := NewBuilder(3, 3)
		for i := 0; i < 3; i++ {
			b.Add(i, i, 1)
		}
		b.Add(0, 2, v1)
		b.Add(0, 2, v2)
		b.Add(2, 0, 0) // explicit structural zero
		return b.Compile()
	}
	a := build(3, 4)
	z := build(3, -3)
	if a.NNZ() != z.NNZ() {
		t.Fatalf("NNZ differs between compiles: %d vs %d", a.NNZ(), z.NNZ())
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != z.RowPtr[i] {
			t.Fatalf("RowPtr differs at %d: %v vs %v", i, a.RowPtr, z.RowPtr)
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != z.ColIdx[k] {
			t.Fatalf("ColIdx differs at %d: %v vs %v", k, a.ColIdx, z.ColIdx)
		}
	}
}

func TestCSRMulVecKnown(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, 3)
	m := b.Compile()
	dst := NewVector(2)
	m.MulVec(dst, Vector{1, 2, 3})
	if dst[0] != 7 || dst[1] != 6 {
		t.Fatalf("got %v, want [7 6]", dst)
	}
}

func TestCSRMulVecAdd(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	m := b.Compile()
	dst := Vector{10, 20}
	m.MulVecAdd(dst, 2, Vector{1, 2})
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("got %v, want [12 24]", dst)
	}
}

// Property: CSR.MulVec agrees with the dense expansion on random sparse
// matrices.
func TestCSRMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(15)
		cols := 1 + r.Intn(15)
		b := NewBuilder(rows, cols)
		nnz := r.Intn(4 * rows)
		for k := 0; k < nnz; k++ {
			b.Add(r.Intn(rows), r.Intn(cols), r.NormFloat64())
		}
		m := b.Compile()
		d := m.ToDense()
		v := NewVector(cols)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		got := NewVector(rows)
		want := NewVector(rows)
		m.MulVec(got, v)
		d.MulVec(want, v)
		return got.MaxAbsDiff(want) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCSRRowPtrInvariant(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(3, 0, 1)
	b.Add(0, 3, 1)
	b.Add(2, 2, 1)
	m := b.Compile()
	if m.RowPtr[0] != 0 || m.RowPtr[4] != m.NNZ() {
		t.Fatalf("RowPtr invariant violated: %v nnz=%d", m.RowPtr, m.NNZ())
	}
	for i := 0; i < 4; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatalf("RowPtr not monotone: %v", m.RowPtr)
		}
	}
}

// TestCSRResidualNormInto checks the fused residual kernel against the
// unfused MulVec path: dst must hold b − M·v entrywise and the return
// value must be its infinity norm.
func TestCSRResidualNormInto(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		m := randShiftedSparse(rng, n, 0.3, 4).Compile()
		b, v := NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			b[i] = 2*rng.Float64() - 1
			v[i] = 2*rng.Float64() - 1
		}
		want := NewVector(n)
		m.MulVec(want, v)
		wantNorm := 0.0
		for i := range want {
			want[i] = b[i] - want[i]
			wantNorm = math.Max(wantNorm, math.Abs(want[i]))
		}
		// The fused kernel subtracts terms sequentially, so it agrees with
		// the b − M·v round trip to roundoff, not bit-exactly.
		dst := NewVector(n)
		if got := m.ResidualNormInto(dst, b, v); math.Abs(got-wantNorm) > 1e-13 {
			t.Fatalf("trial %d: norm %v, want %v", trial, got, wantNorm)
		}
		for i := range dst {
			if math.Abs(dst[i]-want[i]) > 1e-13 {
				t.Fatalf("trial %d: dst[%d] = %v, want %v", trial, i, dst[i], want[i])
			}
		}
	}
}

// TestCSRResidualNormIntoShapePanics verifies mismatched operand shapes
// are rejected rather than silently truncated.
func TestCSRResidualNormIntoShapePanics(t *testing.T) {
	m := randShiftedSparse(rand.New(rand.NewSource(1)), 4, 0.5, 3).Compile()
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	m.ResidualNormInto(NewVector(4), NewVector(4), NewVector(3))
}
