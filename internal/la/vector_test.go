package la

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("Scale: got %v", v)
	}
	v.AXPY(0.5, w)
	if v[0] != 4 || v[1] != 6.5 || v[2] != 9 {
		t.Fatalf("AXPY: got %v", v)
	}
}

func TestDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if v.Dot(v) != 25 {
		t.Fatalf("Dot = %v, want 25", v.Dot(v))
	}
	if v.Norm2() != 5 {
		t.Fatalf("Norm2 = %v, want 5", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Fatalf("NormInf = %v, want 4", v.NormInf())
	}
}

func TestMaxAbsDiff(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{1, 2.5, 2}
	if got := v.MaxAbsDiff(w); got != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", got)
	}
}

func TestHasNaN(t *testing.T) {
	if (Vector{1, 2}).HasNaN() {
		t.Fatal("false positive")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Fatal("missed NaN")
	}
	if !(Vector{math.Inf(1)}).HasNaN() {
		t.Fatal("missed Inf")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

// Property: Cauchy-Schwarz |v·w| <= |v||w|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		for _, x := range []float64{a, b, c, d, e, g} {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		v := Vector{a, b, c}
		w := Vector{d, e, g}
		return math.Abs(v.Dot(w)) <= v.Norm2()*w.Norm2()*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
