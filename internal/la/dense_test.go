package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseSetAt(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 2, 5)
	m.Addf(0, 2, 1.5)
	if got := m.At(0, 2); got != 6.5 {
		t.Fatalf("At(0,2) = %v, want 6.5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %v, want 0", got)
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	v := Vector{1, -2, 3, -4}
	dst := NewVector(4)
	id.MulVec(dst, v)
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("I*v mismatch at %d: %v != %v", i, dst[i], v[i])
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	m := NewDense(2, 3)
	// [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	dst := NewVector(2)
	m.MulVec(dst, Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("got %v, want [6 15]", dst)
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewDense(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewDense(3, 3)
	rows := [][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}}
	for i := range rows {
		for j := range rows[i] {
			a.Set(i, j, rows[i][j])
		}
	}
	// Known solution x = [1, 2, 3]: b = A*x.
	x := Vector{1, 2, 3}
	b := NewVector(3)
	a.MulVec(b, x)
	got, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(got[i], x[i], 1e-12) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factorize(a); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 13, 1e-12) {
		t.Fatalf("Det = %v, want 13", f.Det())
	}
}

// Property: for random well-conditioned matrices, Solve(A, A*x) ≈ x.
func TestLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Addf(i, i, float64(n)) // diagonal dominance for conditioning
		}
		x := NewVector(n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := NewVector(n)
		a.MulVec(b, x)
		got, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		return got.MaxAbsDiff(x) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInto(t *testing.T) {
	a := Identity(3)
	a.Set(0, 0, 2)
	fct, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := Vector{4, 5, 6}
	fct.SolveInto(b, b) // aliasing allowed
	if b[0] != 2 || b[1] != 5 || b[2] != 6 {
		t.Fatalf("got %v, want [2 5 6]", b)
	}
}
