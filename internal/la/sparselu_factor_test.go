package la

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestSparseLUMultiFactorSwitch keeps two numeric Factors over one
// symbolic structure — the shifted-system cache pattern: factor the same
// pattern at two diagonal shifts, switch between them with SetFactor,
// and verify each still solves its own system after the other was
// refactored.
func TestSparseLUMultiFactorSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 25
	m := randShiftedSparse(rng, n, 0.2, 6).Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	base := append([]float64(nil), m.Val...)
	setShift := func(extra float64) {
		copy(m.Val, base)
		for i := 0; i < n; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if m.ColIdx[k] == i {
					m.Val[k] += extra
				}
			}
		}
	}
	denseSolve := func(extra float64, b Vector) Vector {
		setShift(extra)
		x, err := SolveDense(m.ToDense(), b)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}

	facA, facB := f.NewFactor(), f.NewFactor()
	setShift(0)
	f.SetFactor(facA)
	if err := f.Refactor(); err != nil {
		t.Fatal(err)
	}
	setShift(3)
	f.SetFactor(facB)
	if err := f.Refactor(); err != nil {
		t.Fatal(err)
	}

	b := NewVector(n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	got := NewVector(n)
	// facA must still hold the shift-0 factorization even though facB was
	// refactored after it through the same solver.
	f.SetFactor(facA)
	f.SolveInto(got, b)
	want := denseSolve(0, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("factor A after B refactor: x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	f.SetFactor(facB)
	f.SolveInto(got, b)
	want = denseSolve(3, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("factor B: x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSparseLUCloneSharedSymbolicPrivateNumeric pins the CloneFor
// contract the portfolio and the factor cache both lean on: clones share
// the immutable symbolic arrays (same backing storage) but never alias
// numeric values or workspaces.
func TestSparseLUCloneSharedSymbolicPrivateNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 20
	m := randShiftedSparse(rng, n, 0.25, 8).Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := &CSR{Rows: n, Cols: n, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: append([]float64(nil), m.Val...)}
	cp, err := f.CloneFor(m2)
	if err != nil {
		t.Fatal(err)
	}
	// Symbolic structure is shared storage; numeric arrays are private.
	if &f.li[0] != &cp.li[0] || &f.ui[0] != &cp.ui[0] || &f.perm[0] != &cp.perm[0] {
		t.Fatal("clone does not share the symbolic arrays")
	}
	if &f.lx[0] == &cp.lx[0] || &f.ux[0] == &cp.ux[0] || &f.x[0] == &cp.x[0] {
		t.Fatal("clone aliases numeric storage with its parent")
	}
	// A Factor sized by the parent installs into the clone (same symbolic
	// structure) without touching the parent's values.
	if err := f.Refactor(); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), f.ux...)
	fac := f.NewFactor()
	cp.SetFactor(fac)
	for k := range m2.Val {
		m2.Val[k] *= 1.5
	}
	if err := cp.Refactor(); err != nil {
		t.Fatal(err)
	}
	for k := range before {
		if f.ux[k] != before[k] {
			t.Fatal("refactoring the clone mutated the parent's numeric values")
		}
	}
}

// TestSparseLUCloneConcurrentRefactor runs parent and clones
// concurrently — each refactoring and solving its own values — so the
// race detector can certify that shared symbolic state is read-only.
func TestSparseLUCloneConcurrentRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 30
	m := randShiftedSparse(rng, n, 0.2, 10).Compile()
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]*SparseLU, 4)
	mats := make([]*CSR, 4)
	for w := range workers {
		mats[w] = &CSR{Rows: n, Cols: n, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: append([]float64(nil), m.Val...)}
		if workers[w], err = f.CloneFor(mats[w]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lu, mat := workers[w], mats[w]
			rhs, x := NewVector(n), NewVector(n)
			for i := range rhs {
				rhs[i] = float64(w + i)
			}
			for pass := 0; pass < 50; pass++ {
				for i := 0; i < n; i++ {
					for k := mat.RowPtr[i]; k < mat.RowPtr[i+1]; k++ {
						if mat.ColIdx[k] == i {
							mat.Val[k] = 10 + float64(w) + float64(pass)/50
						}
					}
				}
				if err := lu.Refactor(); err != nil {
					errs[w] = err
					return
				}
				lu.SolveInto(x, rhs)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestSparseLUSetFactorMismatchPanics verifies a Factor sized for a
// different symbolic structure is rejected loudly.
func TestSparseLUSetFactorMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	small, err := NewSparseLU(randShiftedSparse(rng, 5, 0.5, 6).Compile())
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewSparseLU(randShiftedSparse(rng, 24, 0.3, 6).Compile())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetFactor accepted a factor from a different structure")
		}
	}()
	big.SetFactor(small.NewFactor())
}
