package la

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// SparseLU is a direct solver for sparse square systems whose sparsity
// pattern is fixed across many numeric refactorizations — exactly the shape
// of the SOLC voltage solve, where the circuit topology (and therefore the
// pattern of C/h·I + A) never changes while the memristor conductances do.
//
// NewSparseLU performs the one-time symbolic phase: a fill-reducing
// ordering (the better of reverse Cuthill-McKee and greedy minimum degree
// on the symmetrized pattern) followed by a Gilbert-Peierls symbolic
// elimination that fixes the nonzero structure of L and U once. Refactor
// then recomputes only the numeric values into the frozen structure (no
// allocation, no pattern work), and SolveInto runs the permuted triangular
// solves.
//
// The factorization is pivot-free: row/column order is decided by the
// symbolic phase alone. That is only stable for matrices kept strongly
// diagonally dominant by construction — here the C/h (or g_leak) diagonal
// shift added on top of nonnegative branch conductances; see DESIGN.md
// "Sparse voltage solve".
type SparseLU struct {
	n int
	a *CSR // bound matrix: values may change, pattern must not

	perm []int // perm[new] = old index (symmetric permutation)

	// Scatter plan: permuted column j reads a.Val[aSrc[t]] into permuted
	// row aRow[t], for t in [aColPtr[j], aColPtr[j+1]).
	aColPtr []int32
	aRow    []int32
	aSrc    []int32

	// L is unit lower triangular, strictly-lower part stored column-wise.
	lp []int32
	li []int32
	lx []float64

	// U is upper triangular stored column-wise with ascending row indices;
	// the diagonal entry is the last of each column.
	up []int32
	ui []int32
	ux []float64

	x []float64 // dense scatter workspace (zero between calls)
	b []float64 // permuted right-hand-side workspace

	// Spans, when set, self-times Refactor (classify/refactor phase) and
	// SolveInto (solve phase); instrumented callers lap around these
	// calls so no interval is charged twice. Clones inherit it via the
	// CloneFor struct copy, so only set it on a solver that is private
	// to one stepping goroutine — never on the shared symbolic template.
	Spans *obs.Spans
}

// NNZFactors returns the stored nonzero count of L and U together
// (observability: fill-in = NNZFactors - NNZ(A)).
func (f *SparseLU) NNZFactors() int { return len(f.lx) + len(f.ux) }

// NewSparseLU computes the fill-reducing ordering and symbolic
// factorization of a and binds the solver to it. The matrix must be square
// with a structurally present diagonal (the circuit assembly guarantees
// this via the C/h·I shift). Subsequent Refactor calls read a.Val in place,
// so the caller may rewrite values — but not the pattern — between
// refactorizations.
func NewSparseLU(a *CSR) (*SparseLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: SparseLU requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	// Symbolically factor under both candidate orderings and keep the one
	// with less fill: RCM wins on banded chains, minimum degree on the
	// grid-like multiplier arrays. The analysis is a one-time Build cost;
	// every numeric refactorization repays the smaller structure.
	adj := symmetrizedAdjacency(a)
	best, err := analyze(a, rcmOrder(a, adj))
	if err != nil {
		return nil, err
	}
	if md, errMD := analyze(a, mdOrder(adj)); errMD == nil && md.NNZFactors() < best.NNZFactors() {
		best = md
	}
	return best, nil
}

// analyze builds the scatter plan and symbolic factorization of a under
// the given ordering (perm[new] = old).
func analyze(a *CSR, perm []int) (*SparseLU, error) {
	n := a.Rows
	f := &SparseLU{n: n, a: a, perm: perm}
	inv := make([]int, n)
	for k, old := range perm {
		inv[old] = k
	}

	// Permuted column structure of A with back-pointers into a.Val.
	type ent struct{ row, src int32 }
	cols := make([][]ent, n)
	for i := 0; i < n; i++ {
		pi := int32(inv[i])
		for t := a.RowPtr[i]; t < a.RowPtr[i+1]; t++ {
			pj := inv[a.ColIdx[t]]
			cols[pj] = append(cols[pj], ent{pi, int32(t)})
		}
	}
	f.aColPtr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		c := cols[j]
		sort.Slice(c, func(x, y int) bool { return c[x].row < c[y].row })
		f.aColPtr[j+1] = f.aColPtr[j] + int32(len(c))
		for _, e := range c {
			f.aRow = append(f.aRow, e.row)
			f.aSrc = append(f.aSrc, e.src)
		}
	}

	// Symbolic Gilbert-Peierls elimination: the pattern of column j of
	// L+U is the reach of A(:,j)'s pattern through the DAG of already
	// computed L columns (edge k→i when L[i,k] ≠ 0). Ascending index order
	// is a valid topological order for the lower-triangular dependency, so
	// the numeric phase can simply walk each stored pattern in order.
	f.lp = make([]int32, n+1)
	f.up = make([]int32, n+1)
	lRows := make([][]int32, n) // strictly-lower pattern of each L column
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	stack := make([]int32, 0, n)
	reach := make([]int, 0, n)
	for j := 0; j < n; j++ {
		reach = reach[:0]
		for t := f.aColPtr[j]; t < f.aColPtr[j+1]; t++ {
			r := f.aRow[t]
			if mark[r] == j {
				continue
			}
			// Iterative DFS through L columns below row r.
			stack = append(stack[:0], r)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if mark[v] == j {
					continue
				}
				mark[v] = j
				reach = append(reach, int(v))
				if int(v) < j {
					for _, w := range lRows[v] {
						if mark[w] != j {
							stack = append(stack, w)
						}
					}
				}
			}
		}
		sort.Ints(reach)
		hasDiag := false
		var lower []int32
		for _, r := range reach {
			switch {
			case r < j:
				f.ui = append(f.ui, int32(r))
			case r == j:
				hasDiag = true
			default:
				lower = append(lower, int32(r))
			}
		}
		if !hasDiag {
			return nil, fmt.Errorf("la: SparseLU structurally singular (no diagonal reach at column %d)", perm[j])
		}
		f.ui = append(f.ui, int32(j)) // diagonal closes the column
		f.up[j+1] = int32(len(f.ui))
		lRows[j] = lower
		f.li = append(f.li, lower...)
		f.lp[j+1] = int32(len(f.li))
	}
	f.lx = make([]float64, len(f.li))
	f.ux = make([]float64, len(f.ui))
	f.x = make([]float64, n)
	f.b = make([]float64, n)
	return f, nil
}

// CloneFor returns a solver bound to a, sharing the receiver's symbolic
// analysis (ordering, scatter plan, and factor structure — all immutable
// after NewSparseLU) with private numeric arrays. a must have exactly the
// pattern the symbolic phase was computed for; engine clones use this so a
// circuit's one-time symbolic factorization serves every concurrent
// attempt.
func (f *SparseLU) CloneFor(a *CSR) (*SparseLU, error) {
	if a.Rows != f.a.Rows || a.Cols != f.a.Cols || len(a.Val) != len(f.a.Val) {
		return nil, fmt.Errorf("la: SparseLU.CloneFor pattern mismatch (%dx%d/%d vs %dx%d/%d)",
			a.Rows, a.Cols, len(a.Val), f.a.Rows, f.a.Cols, len(f.a.Val))
	}
	cp := *f
	cp.a = a
	cp.lx = make([]float64, len(f.li))
	cp.ux = make([]float64, len(f.ui))
	cp.x = make([]float64, f.n)
	cp.b = make([]float64, f.n)
	return &cp, nil
}

// Factor holds one set of numeric L/U values for a SparseLU's frozen
// symbolic structure. A solver can own several Factors — one per cached
// C/h shift of the voltage system — and switch between them with
// SetFactor; each Factor belongs to the SparseLU (or CloneFor engine)
// that created it and must not be shared across clones, which would
// alias numeric storage between concurrent attempts.
type Factor struct {
	lx []float64
	ux []float64
}

// NewFactor allocates an empty Factor sized for f's symbolic structure.
// Fill it by SetFactor followed by Refactor. Allocation is a cold-path
// cost paid once per cache slot.
func (f *SparseLU) NewFactor() *Factor {
	return &Factor{
		lx: make([]float64, len(f.li)),
		ux: make([]float64, len(f.ui)),
	}
}

// SetFactor makes nf the active numeric storage: subsequent Refactor
// calls write into it and SolveInto reads from it. The previously active
// arrays are untouched — a caller holding them in another Factor keeps a
// valid factorization. Panics if nf was sized for a different symbolic
// structure. It allocates nothing.
//
//dmmvet:hotpath
func (f *SparseLU) SetFactor(nf *Factor) {
	if len(nf.lx) != len(f.li) || len(nf.ux) != len(f.ui) {
		panic("la: SparseLU.SetFactor structure mismatch")
	}
	f.lx = nf.lx
	f.ux = nf.ux
}

// Refactor recomputes the numeric factorization from the bound matrix's
// current values, reusing the symbolic structure. It allocates nothing.
// Scalar twin of refactorLane (kernel pair sparse-refactor).
//
//dmmvet:pair name=sparse-refactor role=scalar
//dmmvet:hotpath
func (f *SparseLU) Refactor() error {
	tok := f.Spans.Begin()
	x, aVal := f.x, f.a.Val
	aRow, aSrc := f.aRow, f.aSrc
	liAll, lxAll := f.li, f.lx
	uiAll, uxAll := f.ui, f.ux
	for j := 0; j < f.n; j++ {
		for t := f.aColPtr[j]; t < f.aColPtr[j+1]; t++ {
			x[aRow[t]] = aVal[aSrc[t]]
		}
		// Eliminate with every upper-pattern column k < j (ascending order
		// finalizes x[k] before any larger row consumes it), storing U as
		// we go and clearing the workspace behind us.
		uEnd := f.up[j+1] - 1 // last entry is the diagonal
		for t := f.up[j]; t < uEnd; t++ {
			k := uiAll[t]
			xk := x[k]
			x[k] = 0
			uxAll[t] = xk
			if xk == 0 {
				continue
			}
			li := liAll[f.lp[k]:f.lp[k+1]]
			lx := lxAll[f.lp[k]:f.lp[k+1]]
			lx = lx[:len(li)]
			for s, r := range li {
				// float64(…) pins the multiply-subtract to two roundings:
				// the Go spec lets x[r] - lx[s]*xk fuse into an FMA on
				// arm64, and factor bits must not depend on GOARCH.
				x[r] -= float64(lx[s] * xk)
			}
		}
		d := x[j]
		x[j] = 0
		uxAll[uEnd] = d
		if d == 0 || math.IsNaN(d) {
			return fmt.Errorf("la: sparse LU singular at column %d", f.perm[j])
		}
		invD := 1 / d
		li := liAll[f.lp[j]:f.lp[j+1]]
		lx := lxAll[f.lp[j]:f.lp[j+1]]
		lx = lx[:len(li)]
		for s, r := range li {
			lx[s] = x[r] * invD
			x[r] = 0
		}
	}
	f.Spans.End(obs.PhaseFactor, tok)
	return nil
}

// SolveInto solves A·x = b into dst using the current factorization. dst
// may alias b. It allocates nothing. Scalar twin of solveLaneInto
// (kernel pair sparse-solve).
//
//dmmvet:pair name=sparse-solve role=scalar
//dmmvet:hotpath
func (f *SparseLU) SolveInto(dst, b Vector) {
	if len(b) != f.n || len(dst) != f.n {
		panic("la: SparseLU.SolveInto length mismatch")
	}
	tok := f.Spans.Begin()
	y := f.b
	for k := 0; k < f.n; k++ {
		y[k] = b[f.perm[k]]
	}
	// Forward solve L·z = P·b (unit diagonal, column-oriented).
	for j := 0; j < f.n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		li := f.li[f.lp[j]:f.lp[j+1]]
		lx := f.lx[f.lp[j]:f.lp[j+1]]
		lx = lx[:len(li)]
		for s, r := range li {
			y[r] -= float64(lx[s] * yj) // rounding barrier: no FMA fusion
		}
	}
	// Back solve U·w = z (diagonal last in each column).
	for j := f.n - 1; j >= 0; j-- {
		uEnd := f.up[j+1] - 1
		yj := y[j] / f.ux[uEnd]
		y[j] = yj
		if yj == 0 {
			continue
		}
		ui := f.ui[f.up[j]:uEnd]
		ux := f.ux[f.up[j]:uEnd]
		ux = ux[:len(ui)]
		for t, r := range ui {
			y[r] -= float64(ux[t] * yj) // rounding barrier: no FMA fusion
		}
	}
	for k := 0; k < f.n; k++ {
		dst[f.perm[k]] = y[k]
	}
	f.Spans.End(obs.PhaseSolve, tok)
}

// symmetrizedAdjacency returns the sorted, deduplicated undirected
// adjacency (no self loops) of a's pattern — the graph both orderings
// work on.
func symmetrizedAdjacency(a *CSR) [][]int {
	n := a.Rows
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for t := a.RowPtr[i]; t < a.RowPtr[i+1]; t++ {
			j := a.ColIdx[t]
			if i == j {
				continue
			}
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
		k := 0
		for t, v := range adj[i] {
			if t == 0 || v != adj[i][k-1] {
				adj[i][k] = v
				k++
			}
		}
		adj[i] = adj[i][:k]
	}
	return adj
}

// rcmOrder computes a reverse Cuthill-McKee ordering of the symmetrized
// pattern, returning perm with perm[new] = old. RCM clusters each node's
// neighbours — for SOLC matrices, the gate terminals sharing a branch —
// into a narrow band; it is the stronger choice for chain-like circuits.
func rcmOrder(a *CSR, adj [][]int) []int {
	n := a.Rows
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	bfs := func(root int, record bool) (last []int) {
		queue = append(queue[:0], root)
		visited[root] = true
		if record {
			order = append(order, root)
		}
		levelStart := 0
		for levelStart < len(queue) {
			levelEnd := len(queue)
			for q := levelStart; q < levelEnd; q++ {
				v := queue[q]
				nbrs := append([]int(nil), adj[v]...)
				sort.Slice(nbrs, func(x, y int) bool {
					if deg[nbrs[x]] != deg[nbrs[y]] {
						return deg[nbrs[x]] < deg[nbrs[y]]
					}
					return nbrs[x] < nbrs[y]
				})
				for _, w := range nbrs {
					if !visited[w] {
						visited[w] = true
						queue = append(queue, w)
						if record {
							order = append(order, w)
						}
					}
				}
			}
			last = queue[levelEnd:len(queue):len(queue)]
			if len(last) == 0 {
				last = queue[levelStart:levelEnd]
			}
			levelStart = levelEnd
		}
		return last
	}
	unvisit := func(nodes []int) {
		for _, v := range nodes {
			visited[v] = false
		}
	}

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Pseudo-peripheral root: one BFS hop to the farthest level's
		// minimum-degree node.
		last := bfs(start, false)
		component := append([]int(nil), queue...)
		unvisit(component)
		best := last[0]
		for _, v := range last {
			if deg[v] < deg[best] {
				best = v
			}
		}
		bfs(best, true)
	}
	// Reverse the Cuthill-McKee order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// mdOrder computes a greedy minimum-degree ordering of the symmetrized
// pattern via explicit elimination-graph updates: repeatedly eliminate a
// minimum-degree node and join its neighbours into a clique. Quadratic in
// the worst case but run once per topology at Build time; on the grid-like
// multiplier/adder arrays it beats RCM's fill by integer factors.
func mdOrder(adj [][]int) []int {
	n := len(adj)
	// Private, mutable copy of the adjacency.
	nbrs := make([][]int, n)
	for i := range adj {
		nbrs[i] = append([]int(nil), adj[i]...)
	}
	eliminated := make([]bool, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	stamp := 0
	order := make([]int, 0, n)
	for len(order) < n {
		// Pick the minimum-degree uneliminated node (ties: lowest index,
		// keeping the ordering deterministic).
		v := -1
		for i := 0; i < n; i++ {
			if !eliminated[i] && (v < 0 || len(nbrs[i]) < len(nbrs[v])) {
				v = i
			}
		}
		order = append(order, v)
		eliminated[v] = true
		clique := nbrs[v]
		for _, u := range clique {
			if eliminated[u] {
				continue
			}
			// Compact u's list to survivors, marking them, then add the
			// clique members u is not yet adjacent to.
			stamp++
			mark[u] = stamp
			k := 0
			for _, w := range nbrs[u] {
				if !eliminated[w] {
					nbrs[u][k] = w
					mark[w] = stamp
					k++
				}
			}
			nbrs[u] = nbrs[u][:k]
			for _, w := range clique {
				if !eliminated[w] && mark[w] != stamp {
					nbrs[u] = append(nbrs[u], w)
				}
			}
		}
	}
	return order
}
