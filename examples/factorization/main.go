// Factorization example: the paper's headline experiment (Sec. VII-A).
// The SOLC multiplier is run in reverse: the product bits are imposed by
// DC generators and the factor bits self-organize. A prime input is also
// tried to show the Fig. 13 behaviour (no equilibrium exists).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.TraceNodes = 8
	cfg.TraceEvery = 100

	for _, n := range []uint64{35, 49} {
		fz := core.NewFactorizer(cfg)
		res, err := fz.Factor(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d: ", n)
		if res.Solved {
			fmt.Printf("%d × %d  (t*=%.1f, %s)\n", res.P, res.Q,
				res.Metrics.ConvergenceTime, res.Metrics)
		} else {
			fmt.Printf("no equilibrium (%s)\n", res.Reason)
		}
		if rec, ok := res.Trace.(*trace.Recorder); ok && rec.Len() > 0 {
			fmt.Println("factor-bit voltages over time (−vc..+vc):")
			fmt.Print(rec.RenderASCII(64, -1.2, 1.2))
		}
	}

	// Fig. 13: a prime has no factorization equilibrium; keep the horizon
	// short so the example terminates quickly.
	cfg.TraceNodes = 0
	cfg.TEnd = 15
	cfg.MaxAttempts = 1
	fz := core.NewFactorizer(cfg)
	res, err := fz.Factor(47)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=47 (prime): solved=%v — %s (the machine keeps wandering, Fig. 13)\n",
		res.Solved, res.Reason)
}
