// Self-organizing 3-bit adder (paper Fig. 8): the sum word is imposed by
// DC generators and the two addends self-organize to any pair consistent
// with it — the adder literally runs backwards.
package main

import (
	"fmt"
	"log"

	"repro/internal/boolcirc"
	"repro/internal/circuit"
	"repro/internal/solc"
)

func main() {
	const target = 9 // 1001₂: e.g. 2+7, 3+6, 4+5, ...

	bc := boolcirc.New()
	a := bc.NewSignals(3)
	b := bc.NewSignals(3)
	sum := bc.RippleAdder(a, b) // 4 bits
	pins := map[boolcirc.Signal]bool{}
	for i, s := range sum {
		pins[s] = target&(1<<uint(i)) != 0
	}

	cs := solc.Compile(bc, pins, circuit.Default())
	fmt.Println("compiled:", cs.Eng)
	for seed := int64(1); seed <= 3; seed++ {
		opts := solc.DefaultOptions()
		opts.Seed = seed
		res, err := cs.Solve(opts)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			fmt.Printf("seed %d: no equilibrium (%s)\n", seed, res.Reason)
			continue
		}
		av := boolcirc.WordToUint(res.Assignment, a)
		bv := boolcirc.WordToUint(res.Assignment, b)
		fmt.Printf("seed %d: %d + %d = %d  (t*=%.1f)\n", seed, av, bv, av+bv, res.T)
	}
}
