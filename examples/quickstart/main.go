// Quickstart: build one self-organizing AND gate, pin its *output* to
// logic 1, and watch it find inputs consistent with that output — the
// terminal-agnostic operation that distinguishes SOLGs from ordinary
// gates (paper Sec. V).
package main

import (
	"fmt"
	"log"

	"repro/internal/boolcirc"
	"repro/internal/circuit"
	"repro/internal/solc"
)

func main() {
	// 1. Describe the boolean system: one AND gate, output pinned to 1.
	bc := boolcirc.New()
	a, b := bc.NewSignal(), bc.NewSignal()
	out := bc.And(a, b)
	pins := map[boolcirc.Signal]bool{out: true}

	// 2. Compile it onto a self-organizing logic circuit.
	cs := solc.Compile(bc, pins, circuit.Default())
	fmt.Println("compiled:", cs.Eng)

	// 3. Integrate the circuit dynamics until it self-organizes.
	opts := solc.DefaultOptions()
	res, err := cs.Solve(opts)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("did not converge: %s", res.Reason)
	}

	// 4. Read the inputs the gate chose. AND(out=1) forces both to 1.
	fmt.Printf("self-organized in t* = %.2f: a=%v b=%v (a AND b = 1)\n",
		res.T, res.Assignment[a], res.Assignment[b])
}
