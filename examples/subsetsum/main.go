// Subset-sum example: the NP-hard selection problem of Sec. VII-B. The
// accumulation network of Fig. 14 has its sum word pinned to the target;
// the selector bits self-organize into a satisfying subset, cross-checked
// against the dynamic-programming baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/classical"
	"repro/internal/core"
)

func main() {
	values := []uint64{3, 5, 6, 9}
	target := uint64(14) // 5 + 9 or 3 + 5 + 6

	cfg := core.DefaultConfig()
	ss := core.NewSubsetSum(cfg)
	res, err := ss.Solve(values, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("values=%v target=%d (%s)\n", values, target, res.Metrics)
	if !res.Solved {
		log.Fatalf("no equilibrium: %s", res.Reason)
	}
	var subset []uint64
	for j, v := range values {
		if res.Mask&(1<<uint(j)) != 0 {
			subset = append(subset, v)
		}
	}
	fmt.Printf("SOLC subset: %v (sums to %d, t*=%.1f)\n",
		subset, classical.ApplyMask(values, res.Mask), res.Metrics.ConvergenceTime)

	// Baseline agreement.
	if mask, ok := classical.SubsetSumDP(values, target); ok {
		fmt.Printf("DP baseline subset mask: %0*b (any satisfying subset is valid)\n",
			len(values), mask)
	}

	// An unsatisfiable target: the machine must not converge.
	cfg.TEnd = 15
	cfg.MaxAttempts = 1
	ss = core.NewSubsetSum(cfg)
	res, err = ss.Solve(values, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target=22 (unsatisfiable): solved=%v — %s\n", res.Solved, res.Reason)
}
